package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"equitruss"
	"equitruss/internal/buildinfo"
	olog "equitruss/internal/obs/log"
)

// runServe loads (or builds) an index once and serves community queries
// over HTTP/JSON until SIGINT/SIGTERM, then drains in-flight requests.
func runServe(args []string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runServeCtx(ctx, args, func(addr net.Addr) {
		olog.L().Info("serving community queries",
			slog.String("addr", addr.String()),
			slog.String("url", "http://"+addr.String()),
			slog.String("endpoints", "/community /batch /membership /update /healthz /readyz /metrics /debug/requests"))
	})
}

// runServeCtx is runServe with the lifetime context and listen callback
// injected, so tests can bind to :0 and shut the server down.
func runServeCtx(ctx context.Context, args []string, onListen func(net.Addr)) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	graphSpec := fs.String("graph", "", "edge-list path or dataset:<name>[:<factor>]")
	indexPath := fs.String("index", "", "binary index from 'equitruss build -out' (omit to build at startup)")
	verifyName := fs.String("verify", "eager", "checksum verification for mmap-loaded v3 indexes: eager (before serving) or lazy (in background)")
	variantName := fs.String("variant", "afforest", "variant to build with if no -index given")
	threads := fs.Int("threads", 0, "build threads (0 = all cores)")
	addr := fs.String("addr", ":8080", "listen address")
	cacheSize := fs.Int("cache", 0, "LRU result-cache entries (0 = default 4096, negative disables)")
	workers := fs.Int("workers", 0, "max goroutines executing queries (0 = all cores)")
	maxBatch := fs.Int("maxbatch", 0, "max queries per /batch request (0 = default 10000)")
	maxInFlight := fs.Int("maxinflight", 0, "max concurrent query requests before shedding with 429 (0 = default 256, negative = unlimited)")
	reqTimeout := fs.Duration("reqtimeout", 0, "per-request deadline for query endpoints (0 = none)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	trace := fs.Bool("trace", false, "record per-request latency spans, exposed via /metrics (diagnostic runs only: spans accumulate unbounded)")
	logFormat := fs.String("log-format", "text", "structured log encoding: text|json")
	logLevel := fs.String("log-level", "info", "minimum log level: debug|info|warn|error")
	sampleN := fs.Int("sample", 0, "stage-trace one in every N requests for /debug/requests (0 = default 64, 1 = all, negative disables)")
	slowThresh := fs.Duration("slow", 0, "retain requests at least this slow in /debug/requests (0 = default 250ms, negative disables)")
	debugRing := fs.Int("debug-ring", 0, "traces retained per /debug/requests ring (0 = default 64)")
	walDir := fs.String("wal", "", "state directory enabling durable POST /update (snapshot + write-ahead log; recovered on startup)")
	walSync := fs.String("wal-sync", "always", "WAL fsync policy: always|interval|never")
	walSyncInterval := fs.Duration("wal-sync-interval", 0, "group-fsync period under -wal-sync=interval (0 = default 100ms)")
	updateQueue := fs.Int("update-queue", 0, "acked-but-unapplied update batches before shedding with 429 (0 = default 64)")
	maxUpdateBatch := fs.Int("max-update-batch", 0, "max edge ops per /update request (0 = default 10000)")
	compactEvery := fs.Int("compact-every", 0, "applied update batches between snapshot+truncate compactions (0 = default 64)")
	updateMode := fs.String("update-mode", "auto", "applier publish strategy: auto|incremental|full (auto falls back to full when the delta is large)")
	maxDeltaFrac := fs.Float64("max-delta-frac", 0, "repair-region fraction of the graph above which auto mode falls back to a full rebuild (0 = default 0.2)")
	fs.Parse(args)
	// Validate the whole flag set up front, before the expensive graph load
	// and before binding the listener: a typo'd index path or address should
	// fail in milliseconds, not after minutes of loading.
	format, err := olog.ParseFormat(*logFormat)
	if err != nil {
		return err
	}
	level, err := parseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	log := olog.Init(os.Stderr, format, level)
	if *graphSpec == "" {
		return fmt.Errorf("-graph is required")
	}
	if _, _, err := net.SplitHostPort(*addr); err != nil {
		return fmt.Errorf("bad -addr %q: %v", *addr, err)
	}
	variantSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "variant" {
			variantSet = true
		}
	})
	if *indexPath != "" {
		if variantSet {
			return fmt.Errorf("-index and -variant are mutually exclusive: a loaded index fixes the construction variant")
		}
		if *walDir != "" {
			return fmt.Errorf("-index and -wal are mutually exclusive: live updates rebuild the index from recovered state")
		}
		info, err := os.Stat(*indexPath)
		if err != nil {
			return fmt.Errorf("index file: %w", err)
		}
		if info.IsDir() {
			return fmt.Errorf("index file %s is a directory", *indexPath)
		}
	}
	variant, err := parseVariant(*variantName)
	if err != nil {
		return err
	}
	verify, err := equitruss.ParseVerifyMode(*verifyName)
	if err != nil {
		return fmt.Errorf("bad -verify %q (want eager|lazy)", *verifyName)
	}
	if _, err := equitruss.ParseWALSyncPolicy(*walSync); err != nil {
		return fmt.Errorf("bad -wal-sync %q (want always|interval|never)", *walSync)
	}
	switch *updateMode {
	case "auto", "incremental", "full":
	default:
		return fmt.Errorf("bad -update-mode %q (want auto|incremental|full)", *updateMode)
	}
	g, err := loadGraph(*graphSpec)
	if err != nil {
		return err
	}
	log.Info("graph loaded",
		slog.String("graph", *graphSpec),
		slog.Int64("vertices", int64(g.NumVertices())),
		slog.Int64("edges", int64(g.NumEdges())),
		slog.String("revision", buildinfo.Revision()))
	var tr *equitruss.Tracer
	if *trace {
		tr = equitruss.NewTracer()
	}
	opts := equitruss.ServeOptions{
		Addr:           *addr,
		CacheSize:      *cacheSize,
		Workers:        *workers,
		MaxBatch:       *maxBatch,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *reqTimeout,
		DrainTimeout:   *drain,
		Tracer:         tr,
		TraceSampleN:   *sampleN,
		SlowThreshold:  *slowThresh,
		DebugRing:      *debugRing,
		Logger:         log,
		OnListen:       onListen,
	}
	if *walDir != "" {
		// Durable live serving: recover snapshot + WAL over the base graph,
		// then serve with the update pipeline attached.
		li, err := equitruss.OpenLive(ctx, g, equitruss.LiveOptions{
			Dir:              *walDir,
			SyncPolicy:       *walSync,
			SyncInterval:     *walSyncInterval,
			Variant:          variant,
			Threads:          *threads,
			UpdateQueueDepth: *updateQueue,
			MaxUpdateBatch:   *maxUpdateBatch,
			CompactEvery:     *compactEvery,
			UpdateMode:       *updateMode,
			MaxDeltaFrac:     *maxDeltaFrac,
			Logger:           log,
		})
		if err != nil {
			return err
		}
		defer li.Close()
		log.Info("live state recovered",
			slog.String("dir", *walDir),
			slog.Uint64("seq", li.Seq),
			slog.Int64("edges", li.Index.G.NumEdges()),
			slog.String("wal_sync", *walSync))
		return equitruss.ServeLive(ctx, li, opts)
	}
	var idx *equitruss.Index
	if *indexPath != "" {
		var stats equitruss.LoadStats
		idx, stats, err = equitruss.OpenIndexFile(*indexPath, g, verify)
		if err != nil {
			return err
		}
		opts.IndexLoadSeconds = stats.Seconds
		opts.MmapBytes = stats.MmapBytes
		log.Info("index loaded",
			slog.String("path", *indexPath),
			slog.String("format", fmt.Sprintf("%v", stats.Format)),
			slog.Float64("load_seconds", stats.Seconds),
			slog.Int64("mmap_bytes", stats.MmapBytes))
	} else {
		idx, err = equitruss.BuildIndex(g, equitruss.Options{Variant: variant, Threads: *threads, Context: ctx})
		if err != nil {
			return err
		}
		log.Info("index built",
			slog.String("variant", fmt.Sprintf("%v", variant)),
			slog.Duration("duration", idx.Timings.Total()))
	}
	log.Info("index ready",
		slog.Int64("supernodes", int64(idx.SG.NumSupernodes())),
		slog.Int64("superedges", int64(idx.SG.NumSuperedges())))
	return equitruss.Serve(ctx, idx, opts)
}

// parseLogLevel maps a -log-level flag value onto a slog.Level.
func parseLogLevel(s string) (slog.Level, error) {
	var level slog.Level
	if err := level.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("bad -log-level %q (want debug|info|warn|error)", s)
	}
	return level, nil
}
