package equitruss_test

import (
	"fmt"
	"testing"

	"equitruss"
)

// TestBuildSummaryKernelEquivalence: the Support kernel is an
// implementation detail — on a skewed RMAT graph every kernel choice
// (including auto, which resolves to oriented here) must produce a
// bit-identical trussness array and the same canonical summary graph as
// the merge reference.
func TestBuildSummaryKernelEquivalence(t *testing.T) {
	g := equitruss.GenerateRMAT(14, 8, 42)
	ref, _, err := equitruss.BuildSummary(g, equitruss.Options{
		Variant: equitruss.Afforest, Threads: 4, SupportKernel: equitruss.KernelMerge,
	})
	if err != nil {
		t.Fatal(err)
	}
	canon := ref.Canonical(g)
	for _, k := range []equitruss.SupportKernel{
		equitruss.KernelGalloping, equitruss.KernelOriented, equitruss.KernelAuto,
	} {
		t.Run(fmt.Sprint(k), func(t *testing.T) {
			sg, _, err := equitruss.BuildSummary(g, equitruss.Options{
				Variant: equitruss.Afforest, Threads: 4, SupportKernel: k,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref.Tau {
				if sg.Tau[i] != ref.Tau[i] {
					t.Fatalf("tau[%d] = %d, want %d", i, sg.Tau[i], ref.Tau[i])
				}
			}
			if sg.Canonical(g) != canon {
				t.Fatal("summary graph differs from the merge-kernel reference")
			}
		})
	}
}
