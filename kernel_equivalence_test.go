package equitruss_test

import (
	"fmt"
	"hash/fnv"
	"testing"

	"equitruss"
	"equitruss/internal/gen"
)

// TestBuildSummaryKernelEquivalence: the Support kernel is an
// implementation detail — on a skewed RMAT graph every kernel choice
// (including auto, which resolves to oriented here) must produce a
// bit-identical trussness array and the same canonical summary graph as
// the merge reference.
func TestBuildSummaryKernelEquivalence(t *testing.T) {
	g := equitruss.GenerateRMAT(14, 8, 42)
	ref, _, err := equitruss.BuildSummary(g, equitruss.Options{
		Variant: equitruss.Afforest, Threads: 4, SupportKernel: equitruss.KernelMerge,
	})
	if err != nil {
		t.Fatal(err)
	}
	canon := ref.Canonical(g)
	for _, k := range []equitruss.SupportKernel{
		equitruss.KernelGalloping, equitruss.KernelOriented, equitruss.KernelAuto,
	} {
		t.Run(fmt.Sprint(k), func(t *testing.T) {
			sg, _, err := equitruss.BuildSummary(g, equitruss.Options{
				Variant: equitruss.Afforest, Threads: 4, SupportKernel: k,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref.Tau {
				if sg.Tau[i] != ref.Tau[i] {
					t.Fatalf("tau[%d] = %d, want %d", i, sg.Tau[i], ref.Tau[i])
				}
			}
			if sg.Canonical(g) != canon {
				t.Fatal("summary graph differs from the merge-kernel reference")
			}
		})
	}
}

// tauChecksum hashes a trussness array plus its kmax into one FNV-1a word,
// so whole-array equality across kernels collapses to one comparison.
func tauChecksum(tau []int32) uint64 {
	h := fnv.New64a()
	var kmax int32
	var b [4]byte
	for _, v := range tau {
		if v > kmax {
			kmax = v
		}
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(b[:])
	}
	b[0], b[1], b[2], b[3] = byte(kmax), byte(kmax>>8), byte(kmax>>16), byte(kmax>>24)
	h.Write(b[:])
	return h.Sum64()
}

// TestKernelMatrixEquivalence crosses every Support kernel with every peel
// kernel on RMAT plus all dataset surrogates: the τ/kmax FNV checksum must
// be identical across the whole matrix — kernels are implementation
// details, never answers.
func TestKernelMatrixEquivalence(t *testing.T) {
	supportKernels := []equitruss.SupportKernel{
		equitruss.KernelAuto, equitruss.KernelMerge, equitruss.KernelGalloping, equitruss.KernelOriented,
	}
	peelKernels := []equitruss.PeelKernel{
		equitruss.PeelAuto, equitruss.PeelSerial, equitruss.PeelLevelSync, equitruss.PeelPKT,
	}
	graphs := map[string]*equitruss.Graph{
		"rmat-12": equitruss.GenerateRMAT(12, 8, 42),
	}
	for _, spec := range gen.Datasets {
		g, err := equitruss.GenerateDataset(spec.Name, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		graphs[spec.Name] = g
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			want := tauChecksum(equitruss.TrussnessWithKernels(g, equitruss.KernelMerge, equitruss.PeelSerial, 1))
			for _, sk := range supportKernels {
				for _, pk := range peelKernels {
					got := tauChecksum(equitruss.TrussnessWithKernels(g, sk, pk, 4))
					if got != want {
						t.Fatalf("support=%v peel=%v: τ checksum %016x, want %016x (m=%d)",
							sk, pk, got, want, g.NumEdges())
					}
				}
			}
		})
	}
}
