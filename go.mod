module equitruss

go 1.22
