package equitruss_test

import (
	"fmt"

	"equitruss"
)

// ExampleBuildIndex builds an index over two cliques sharing a vertex and
// lists the overlapping communities of the shared vertex.
func ExampleBuildIndex() {
	edges := []equitruss.Edge{
		// clique A: 0-1-2-3
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3},
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
		// clique B: 3-4-5-6
		{U: 3, V: 4}, {U: 3, V: 5}, {U: 3, V: 6},
		{U: 4, V: 5}, {U: 4, V: 6}, {U: 5, V: 6},
	}
	g, _ := equitruss.NewGraph(edges, 0)
	idx, _ := equitruss.BuildIndex(g, equitruss.Options{Variant: equitruss.Afforest})
	for _, c := range idx.Communities(3, 4) {
		fmt.Println(c.Vertices())
	}
	// Output:
	// [0 1 2 3]
	// [3 4 5 6]
}

// ExampleTrussness decomposes a triangle with a pendant edge.
func ExampleTrussness() {
	g, _ := equitruss.NewGraph([]equitruss.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3},
	}, 0)
	tau := equitruss.Trussness(g, 1)
	for eid, k := range tau {
		e := g.Edge(int32(eid))
		fmt.Printf("(%d,%d): %d\n", e.U, e.V, k)
	}
	// Output:
	// (0,1): 3
	// (0,2): 3
	// (1,2): 3
	// (2,3): 2
}

// ExampleDynamicGraph shows exact incremental maintenance: closing a
// triangle raises trussness, breaking it lowers it back.
func ExampleDynamicGraph() {
	dg := equitruss.NewDynamicGraph(3)
	dg.InsertEdge(0, 1)
	dg.InsertEdge(1, 2)
	dg.InsertEdge(0, 2)
	k, _ := dg.Trussness(0, 1)
	fmt.Println("closed:", k)
	dg.DeleteEdge(0, 2)
	k, _ = dg.Trussness(0, 1)
	fmt.Println("broken:", k)
	// Output:
	// closed: 3
	// broken: 2
}
