//go:build !windows

package equitruss_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"equitruss"
	"equitruss/internal/graphio"
)

// TestCrashSafeKillMidStream is the subprocess crash drill behind `make
// crashsafe`: a real server process takes a stream of durable updates, is
// SIGKILLed mid-stream with no warning, restarts over the same state
// directory, and must come back serving a state bit-identical (by canonical
// checksums) to an in-process rebuild of the same update prefix. The drill
// runs once per applier publish strategy, so a crash landing inside an
// incremental summary/hierarchy repair is exercised as well as one landing
// inside a full rebuild.
//
// Gated behind EQUITRUSS_CRASHSAFE=1 because it builds the binary and runs
// wall-clock phases; tier-1 `go test ./...` stays fast without it, and the
// in-process TestLiveRecoveryMatchesStaticRebuild covers the same recovery
// logic.
func TestCrashSafeKillMidStream(t *testing.T) {
	if os.Getenv("EQUITRUSS_CRASHSAFE") != "1" {
		t.Skip("set EQUITRUSS_CRASHSAFE=1 (or run `make crashsafe`) to run the kill drill")
	}
	binDir := t.TempDir()
	bin := filepath.Join(binDir, "equitruss-bin")
	build := exec.Command("go", "build", "-o", bin, "./cmd/equitruss")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building server binary: %v", err)
	}
	for _, mode := range []string{"incremental", "full"} {
		t.Run(mode, func(t *testing.T) { crashDrill(t, bin, mode) })
	}
}

// crashDrill runs one kill-restart-verify cycle with the given applier
// publish strategy.
func crashDrill(t *testing.T, bin, mode string) {
	dir := t.TempDir()
	base := equitruss.GenerateRMAT(8, 6, 42)
	graphPath := filepath.Join(dir, "base.txt")
	if err := graphio.WriteEdgeListFile(graphPath, base); err != nil {
		t.Fatal(err)
	}
	stateDir := filepath.Join(dir, "state")

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := func() *exec.Cmd {
		cmd := exec.Command(bin, "serve",
			"-graph", graphPath, "-wal", stateDir, "-addr", addr,
			"-variant", "afforest", "-threads", "2", "-compact-every", "3",
			"-update-mode", mode)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting server: %v", err)
		}
		return cmd
	}
	waitReady := func() {
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := http.Get("http://" + addr + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatal("server never became ready")
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// batchOps is the deterministic update stream: the k-th acked batch (WAL
	// seq k) is always batchOps(k), which lets the verifier rebuild the
	// exact applied prefix without trusting anything the killed process said.
	n := int(base.NumVertices())
	batchOps := func(k int) []equitruss.UpdateOp {
		return []equitruss.UpdateOp{
			{U: int32(n + k), V: int32((3 * k) % n)},
			{U: int32(n + k), V: int32((5*k + 1) % n)},
			{Del: true, U: int32((7 * k) % n), V: int32((11*k + 2) % n)},
		}
	}
	postBatch := func(k int) (int, error) {
		type op struct {
			Op string `json:"op,omitempty"`
			U  int32  `json:"u"`
			V  int32  `json:"v"`
		}
		var ops []op
		for _, o := range batchOps(k) {
			kind := ""
			if o.Del {
				kind = "delete"
			}
			ops = append(ops, op{Op: kind, U: o.U, V: o.V})
		}
		body, _ := json.Marshal(map[string]any{"ops": ops})
		resp, err := http.Post("http://"+addr+"/update", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		return resp.StatusCode, nil
	}

	cmd := start()
	killed := make(chan struct{})
	defer func() {
		select {
		case <-killed:
		default:
			cmd.Process.Kill()
		}
		cmd.Wait()
	}()
	waitReady()

	// Stream updates sequentially; the k-th acked batch takes WAL seq k.
	// Retry 429s (shed batches never reached the WAL, so the mapping
	// holds). SIGKILL lands mid-stream, so late posts fail — expected.
	maxAcked := 0
	go func() {
		time.Sleep(300 * time.Millisecond)
		cmd.Process.Signal(syscall.SIGKILL)
		close(killed)
	}()
stream:
	for k := 1; k <= 500; k++ {
		for {
			code, err := postBatch(k)
			if err != nil {
				break stream // process died mid-request
			}
			if code == http.StatusTooManyRequests {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			if code != http.StatusOK {
				t.Fatalf("batch %d: status %d", k, code)
			}
			maxAcked = k
			break
		}
	}
	<-killed
	cmd.Wait()
	if maxAcked == 0 {
		t.Fatal("no batch was acked before the kill — nothing to verify")
	}
	t.Logf("mode %s: killed after %d acked batches", mode, maxAcked)

	// Restart over the same state directory.
	cmd2 := start()
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	waitReady()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	applied := int(health["applied_seq"].(float64))
	if applied < maxAcked {
		t.Fatalf("recovered applied_seq %d < %d acked before the kill — acked updates lost", applied, maxAcked)
	}
	gotSums, ok := health["checksums"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing checksums: %v", health)
	}

	// Differential: rebuild the exact applied prefix in-process — same base,
	// batches 1..applied through the dynamic maintenance path, then a full
	// from-scratch serial static build (independent re-peeling, not the
	// incremental τ the server maintained) — and compare fingerprints.
	dyn := equitruss.NewDynamicFromGraph(base, 1)
	for k := 1; k <= applied; k++ {
		for _, o := range batchOps(k) {
			if o.Del {
				dyn.DeleteEdge(o.U, o.V)
			} else if _, err := dyn.InsertEdge(o.U, o.V); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, _, err := dyn.ToStatic()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := equitruss.BuildIndex(g, equitruss.Options{Variant: equitruss.Serial, Threads: 1, Context: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	want := ix.Checksums()
	for layer, w := range map[string]uint64{
		"tau": want.Tau, "summary": want.Summary, "hierarchy": want.Hierarchy,
	} {
		if got := gotSums[layer].(string); got != fmt.Sprintf("%016x", w) {
			t.Fatalf("%s checksum after crash recovery: server %s, independent rebuild %016x", layer, got, w)
		}
	}
}
