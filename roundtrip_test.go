package equitruss_test

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"equitruss"
)

// canonCommunities renders a community list order-independently (member
// edges are already ascending) so answers from different code paths can be
// compared exactly.
func canonCommunities(cs []*equitruss.Community) string {
	keys := make([]string, len(cs))
	for i, c := range cs {
		keys[i] = fmt.Sprint(c.K, c.Edges)
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}

// TestSaveLoadRoundTripAllVariants saves and reloads an index built by each
// of the four construction variants and checks the reloaded index answers
// every (vertex, k) query exactly like the index-free DirectCommunities
// oracle — the full persistence path has to preserve query semantics, not
// just array shapes.
func TestSaveLoadRoundTripAllVariants(t *testing.T) {
	g := equitruss.GenerateRMAT(8, 6, 17)
	tau := equitruss.Trussness(g, 2)
	variants := []equitruss.Variant{
		equitruss.Serial, equitruss.Baseline, equitruss.COptimal, equitruss.Afforest,
	}
	for _, variant := range variants {
		t.Run(variant.String(), func(t *testing.T) {
			idx, err := equitruss.BuildIndex(g, equitruss.Options{Variant: variant, Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := equitruss.SaveIndex(&buf, idx.SG); err != nil {
				t.Fatal(err)
			}
			loaded, err := equitruss.LoadIndex(&buf, g)
			if err != nil {
				t.Fatal(err)
			}
			for v := int32(0); v < 30 && v < g.NumVertices(); v++ {
				for _, k := range []int32{3, 4, 5} {
					want := canonCommunities(equitruss.DirectCommunities(g, tau, v, k))
					got := canonCommunities(loaded.Communities(v, k))
					if got != want {
						t.Fatalf("v=%d k=%d: loaded index answer diverges from oracle\n got %s\nwant %s",
							v, k, got, want)
					}
				}
			}
		})
	}
}
