# Convenience targets; everything is plain `go` underneath.

GO ?= go

# Stamp the binary with the git revision so `equitruss version` and the
# /healthz "revision" field identify the build even when the module was
# compiled outside a checkout (where debug.ReadBuildInfo has no vcs info).
REV ?= $(shell git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)
LDFLAGS := -X equitruss/internal/buildinfo.revision=$(REV)

.PHONY: all build test race bench benchcheck repro examples ci serversmoke servermetrics chaos crashsafe coldstart clean

all: build test

build:
	$(GO) build -ldflags '$(LDFLAGS)' ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The gate every change must pass: vet, vulnerability scan (when the
# scanner is installed), build, full tests, the race-detector subset
# covering the shared-state hot spots (schedulers, connected components,
# the query server), and the chaos suite.
ci: serversmoke servermetrics chaos crashsafe coldstart
	$(GO) vet ./...
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed — skipping vulnerability scan"; \
		echo "  (go install golang.org/x/vuln/cmd/govulncheck@latest to enable)"; \
	fi
	$(GO) build -ldflags '$(LDFLAGS)' ./...
	$(GO) test ./...
	$(GO) test -race ./internal/concur ./internal/cc ./internal/triangle ./internal/truss ./internal/community ./internal/obs
	$(MAKE) benchcheck

# Perf regression gate: rerun the Support kernel sweep, the query-path
# workloads, the peel kernel sweep, the live-update applier sweep, and the
# cold-start loader sweep and compare each cell's time — normalized within
# the same run (Support kernels by merge, query engines by indexed-bfs, peel
# kernels by levelsync, update engines by full-rebuild, mmap loaders by
# v2-decode) so absolute machine speed cancels — against the committed
# baseline. Fails on a >20% normalized regression, and
# fails loudly when a baseline row is missing. Artifacts land in bench/
# (gitignored except the committed baseline + reference artifacts).
benchcheck:
	$(GO) run ./cmd/benchsuite -experiment support,query,peel,update,coldstart -scale 0.05 -out bench/ -check bench/baseline.json

# Race-enabled server smoke: 64 concurrent clients hammer one handler
# (httptest) mixing cached singles and pooled batches, answers checked
# against a precomputed oracle.
serversmoke:
	$(GO) test -race -run 'TestServerSmokeConcurrent|TestGracefulShutdownDrainsInflight' ./internal/server

# Race-enabled observability proof: concurrent mixed load against one
# handler with 1-in-1 sampling, then asserts /metrics exposes the latency
# histograms + runtime/instance gauges, /debug/requests retains stage
# traces, and the JSON log joins on request_id.
servermetrics:
	$(GO) test -race -run 'TestServerMetricsUnderLoad|TestErroredRequestRetainedAndLogged|TestHealthzRevision' ./internal/server

# Fault-injection and robustness proofs, all race-enabled: mid-build
# cancellation with goroutine-leak assertions, corrupt-index rejection,
# crash-safe saves, and the server surviving injected errors/panics/delays.
# See docs/ROBUSTNESS.md for the fault-site registry.
chaos:
	$(GO) test -race -run 'TestChaos' .
	$(GO) test -race ./internal/faults ./internal/server ./internal/graphio

# Crash-recovery drill, race-enabled: builds the real binary, streams
# durable /update batches at a live server, SIGKILLs it mid-stream,
# restarts over the same state directory, and differential-verifies the
# recovered state (canonical checksums from /healthz) against an
# independent in-process rebuild of the acked update prefix. Also runs the
# in-process durability suite (recovery, compaction, WAL poisoning).
crashsafe:
	EQUITRUSS_CRASHSAFE=1 $(GO) test -race -run 'TestCrashSafeKillMidStream|TestLive' .
	$(GO) test -race ./internal/wal ./internal/dynamic

# Cold-start drill, race-enabled: builds the real binary, writes a v3 index
# with `equitruss build -format v3`, serves it from a zero-copy mmap with
# lazy verification, SIGKILLs the server with the mapping live, restarts
# over the same file with eager verification, and differential-verifies both
# processes' serving checksums (from /healthz) against an independent
# in-process rebuild. Also runs the mmap/heap loader equivalence suite.
coldstart:
	EQUITRUSS_COLDSTART=1 $(GO) test -race -run 'TestColdstart' .
	$(GO) test -race ./internal/mmapio ./internal/graphio

# One benchmark per paper table/figure plus ablations (bench_test.go).
bench:
	$(GO) test -bench=. -benchmem ./...

# Long-form reproduction of the paper's evaluation; writes plot-ready TSVs.
repro:
	$(GO) run ./cmd/benchsuite -experiment all -scale 0.25 -out results/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/socialnetwork
	$(GO) run ./examples/proteins
	$(GO) run ./examples/kernelbreakdown
	$(GO) run ./examples/dynamicupdates

clean:
	rm -rf results/
