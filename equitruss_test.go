package equitruss_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"equitruss"
)

func TestBuildIndexQuickstart(t *testing.T) {
	// The README example, end to end.
	g, err := equitruss.NewGraph([]equitruss.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := equitruss.BuildIndex(g, equitruss.Options{Variant: equitruss.Afforest})
	if err != nil {
		t.Fatal(err)
	}
	cs := idx.Communities(0, 3)
	if len(cs) != 1 {
		t.Fatalf("communities = %d, want 1", len(cs))
	}
	if got := fmt.Sprint(cs[0].Vertices()); got != "[0 1 2]" {
		t.Fatalf("community vertices = %s", got)
	}
}

func TestAllVariantsAgreeViaPublicAPI(t *testing.T) {
	g, err := equitruss.GenerateDataset("amazon-sim", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var canon string
	for _, variant := range []equitruss.Variant{equitruss.Serial, equitruss.Baseline, equitruss.COptimal, equitruss.Afforest} {
		sg, tm, err := equitruss.BuildSummary(g, equitruss.Options{Variant: variant, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if tm.Total() <= 0 {
			t.Fatalf("%v: no timings", variant)
		}
		c := sg.Canonical(g)
		if canon == "" {
			canon = c
		} else if c != canon {
			t.Fatalf("variant %v disagrees", variant)
		}
	}
}

func TestTrussnessHelper(t *testing.T) {
	g := equitruss.GenerateRMAT(9, 6, 5)
	t1 := equitruss.Trussness(g, 1)
	t2 := equitruss.Trussness(g, 2)
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trussness differs at %d: %d vs %d", i, t1[i], t2[i])
		}
	}
	sup := equitruss.Supports(g, 2)
	if len(sup) != int(g.NumEdges()) {
		t.Fatalf("supports length %d", len(sup))
	}
}

func TestSerialTrussOption(t *testing.T) {
	g := equitruss.GenerateRMAT(8, 4, 6)
	a, _, err := equitruss.BuildSummary(g, equitruss.Options{Variant: equitruss.COptimal, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := equitruss.BuildSummary(g, equitruss.Options{Variant: equitruss.COptimal, Threads: 2, SerialTruss: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Canonical(g) != b.Canonical(g) {
		t.Fatal("SerialTruss changed the result")
	}
}

func TestIndexSaveLoad(t *testing.T) {
	g, err := equitruss.GenerateDataset("dblp", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := equitruss.BuildIndex(g, equitruss.Options{Variant: equitruss.COptimal})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := equitruss.SaveIndex(&buf, idx.SG); err != nil {
		t.Fatal(err)
	}
	idx2, err := equitruss.LoadIndex(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	// Queries through the loaded index must match.
	for v := int32(0); v < 20; v++ {
		a := idx.Communities(v, 4)
		b := idx2.Communities(v, 4)
		if len(a) != len(b) {
			t.Fatalf("v=%d: %d vs %d communities", v, len(a), len(b))
		}
	}
	// Mismatched graph must be rejected.
	other := equitruss.GenerateRMAT(6, 3, 9)
	var buf2 bytes.Buffer
	if err := equitruss.SaveIndex(&buf2, idx.SG); err != nil {
		t.Fatal(err)
	}
	if _, err := equitruss.LoadIndex(&buf2, other); err == nil {
		t.Fatal("index accepted for wrong graph")
	}
}

func TestDirectCommunitiesExported(t *testing.T) {
	g, _ := equitruss.NewGraph([]equitruss.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}, 0)
	tau := equitruss.Trussness(g, 1)
	cs := equitruss.DirectCommunities(g, tau, 0, 3)
	if len(cs) != 1 || len(cs[0].Edges) != 3 {
		t.Fatalf("direct communities = %v", cs)
	}
}

func TestNilGraphRejected(t *testing.T) {
	if _, err := equitruss.BuildIndex(nil, equitruss.Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, _, err := equitruss.BuildSummary(nil, equitruss.Options{}); err == nil {
		t.Fatal("nil graph accepted by BuildSummary")
	}
}

func TestReadEdgeListPublic(t *testing.T) {
	g, err := equitruss.ReadEdgeList(bytes.NewBufferString("0 1\n1 2\n0 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestMaximalKTrussPublic(t *testing.T) {
	g, _ := equitruss.NewGraph([]equitruss.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, // triangle
		{U: 2, V: 3}, // pendant
	}, 0)
	tau := equitruss.Trussness(g, 1)
	t3, err := equitruss.MaximalKTruss(g, tau, 3)
	if err != nil {
		t.Fatal(err)
	}
	if t3.NumEdges() != 3 {
		t.Fatalf("3-truss edges = %d, want 3", t3.NumEdges())
	}
	hist := equitruss.TrussnessHistogram(tau)
	if hist[3] != 3 || hist[2] != 1 {
		t.Fatalf("histogram = %v", hist)
	}
}

func TestIndexStatsAndBatchPublic(t *testing.T) {
	g, err := equitruss.GenerateDataset("amazon", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := equitruss.BuildIndex(g, equitruss.Options{Variant: equitruss.COptimal})
	if err != nil {
		t.Fatal(err)
	}
	var st equitruss.Stats = idx.SG.ComputeStats()
	if st.Supernodes == 0 {
		t.Fatal("no supernodes in dataset index")
	}
	queries := []equitruss.Query{{Vertex: 0, K: 3}, {Vertex: 1, K: 4}}
	out := idx.BatchCommunities(queries, 2)
	if len(out) != 2 {
		t.Fatalf("batch results = %d", len(out))
	}
}

func TestDynamicGraphPublic(t *testing.T) {
	dg := equitruss.NewDynamicGraph(4)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}} {
		if _, err := dg.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if tau, ok := dg.Trussness(0, 1); !ok || tau != 3 {
		t.Fatalf("τ(0,1) = %d, %v", tau, ok)
	}
	dg.DeleteEdge(0, 2)
	if tau, _ := dg.Trussness(0, 1); tau != 2 {
		t.Fatalf("τ(0,1) after break = %d", tau)
	}
	g := equitruss.GenerateRMAT(7, 4, 12)
	dg2 := equitruss.NewDynamicFromGraph(g, 0)
	if dg2.NumEdges() != g.NumEdges() {
		t.Fatalf("import edges = %d, want %d", dg2.NumEdges(), g.NumEdges())
	}
	g2, tau2, err := dg2.ToStatic()
	if err != nil {
		t.Fatal(err)
	}
	want := equitruss.Trussness(g2, 1)
	for i := range want {
		if tau2[i] != want[i] {
			t.Fatalf("exported tau differs at %d", i)
		}
	}
}

func TestEvaluateCommunityPublic(t *testing.T) {
	g, _ := equitruss.NewGraph([]equitruss.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 2, V: 3}, {U: 3, V: 4},
	}, 0)
	idx, err := equitruss.BuildIndex(g, equitruss.Options{Variant: equitruss.COptimal})
	if err != nil {
		t.Fatal(err)
	}
	cs := idx.Communities(0, 3)
	if len(cs) != 1 {
		t.Fatalf("communities = %d", len(cs))
	}
	m := equitruss.EvaluateCommunity(g, cs[0])
	if m.Vertices != 3 || m.Density != 1.0 || m.MinInternalDegree != 2 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestAllCommunitiesPublic(t *testing.T) {
	g, err := equitruss.GenerateDataset("dblp", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := equitruss.BuildIndex(g, equitruss.Options{Variant: equitruss.Afforest})
	if err != nil {
		t.Fatal(err)
	}
	all := idx.AllCommunities(3)
	if len(all) == 0 {
		t.Fatal("no k=3 communities in community graph")
	}
	profile := idx.CommunityCount()
	if profile[3] != len(all) {
		t.Fatalf("profile[3] = %d, want %d", profile[3], len(all))
	}
}

func TestTracedBuildEmitsSpans(t *testing.T) {
	g, err := equitruss.GenerateDataset("amazon-sim", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	tr := equitruss.NewTracer()
	// Pin a parallel peel kernel so TrussDecomp emits per-thread spans even
	// on a graph small enough for auto to pick the serial bucket queue.
	idx, err := equitruss.BuildIndex(g, equitruss.Options{Variant: equitruss.Afforest, Threads: 4, Tracer: tr, PeelKernel: equitruss.PeelPKT})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Trace != tr {
		t.Fatal("index did not keep its tracer")
	}
	rep := idx.BuildReport()
	// One pipeline-level span per kernel of the Afforest pipeline.
	for _, name := range []string{"Support", "TrussDecomp", "Init", "SpNode", "SpEdge", "SmGraph"} {
		k := rep.Kernel(name)
		if k == nil {
			t.Fatalf("kernel %s missing from report", name)
		}
		if k.Wall <= 0 {
			t.Fatalf("kernel %s has no pipeline wall time", name)
		}
	}
	// Every parallel kernel recorded at least one per-thread span.
	for _, name := range []string{"Support", "TrussDecomp", "SpNode", "SpEdge", "SmGraph"} {
		k := rep.Kernel(name)
		if len(k.Threads) == 0 {
			t.Fatalf("kernel %s has no per-thread spans", name)
		}
		if k.Imbalance < 1.0 {
			t.Fatalf("kernel %s imbalance %f < 1", name, k.Imbalance)
		}
	}
	// The dynamic Support scheduler accounts for every edge exactly once.
	if got := rep.Kernel("Support").Items; got != int64(g.NumEdges()) {
		t.Fatalf("Support items = %d, want %d", got, g.NumEdges())
	}

	// The Chrome trace export must be valid JSON with the expected events.
	var buf bytes.Buffer
	if err := equitruss.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 8 {
		t.Fatalf("only %d trace events", len(doc.TraceEvents))
	}

	// And the Prometheus exposition must carry kernel gauges and counters.
	buf.Reset()
	if err := equitruss.WriteMetrics(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"equitruss_kernel_seconds", "equitruss_kernel_imbalance_ratio", "_total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestBuildReportWithoutTracer(t *testing.T) {
	g, err := equitruss.GenerateDataset("amazon-sim", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := equitruss.BuildIndex(g, equitruss.Options{Variant: equitruss.COptimal, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := idx.BuildReport()
	// Synthesized from Timings: wall times present, no per-thread rows.
	k := rep.Kernel("SpNode")
	if k == nil || k.Wall <= 0 {
		t.Fatalf("synthesized report lacks SpNode wall time: %+v", k)
	}
	if len(k.Threads) != 0 {
		t.Fatal("untraced build should have no per-thread stats")
	}
}

func TestCountersAccumulate(t *testing.T) {
	equitruss.ResetCounters()
	g, err := equitruss.GenerateDataset("amazon-sim", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the level-synchronous peel kernel: auto may resolve to the serial
	// bucket queue on a graph this small, which runs none of the parallel
	// peel counters this test pins.
	opt := equitruss.Options{Variant: equitruss.Afforest, Threads: 2, PeelKernel: equitruss.PeelLevelSync}
	if _, err := equitruss.BuildIndex(g, opt); err != nil {
		t.Fatal(err)
	}
	vals := map[string]int64{}
	for _, c := range equitruss.Counters() {
		vals[c.Name] = c.Value
	}
	// The Afforest pipeline must have moved these counters off zero.
	for _, name := range []string{
		"truss_peel_levels", "truss_support_decrements",
		"spnode_afforest_sample_total", "spedge_emitted", "smgraph_superedges_final",
	} {
		if vals[name] <= 0 {
			t.Fatalf("counter %s = %d after an Afforest build\nall: %v", name, vals[name], vals)
		}
	}
}
