package equitruss_test

import (
	"testing"

	"equitruss"
	"equitruss/internal/core"
	"equitruss/internal/gen"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

// TestStressModerateRMAT is the belt-and-braces integration run: a
// moderately sized skewed graph through the whole pipeline with every
// variant (including the §3.1 ablation strategies), checking exact
// agreement of indexes, structural validity, and a sample of community
// queries against the direct oracle.
func TestStressModerateRMAT(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	g := gen.RMAT(13, 10, 0.57, 0.19, 0.19, 2024)
	sup := triangle.Supports(g, 0)
	tauS, kS := truss.DecomposeSerial(g, sup)
	tauP, kP := truss.DecomposeParallel(g, sup, 0)
	if kS != kP {
		t.Fatalf("kmax: serial %d vs parallel %d", kS, kP)
	}
	for i := range tauS {
		if tauS[i] != tauP[i] {
			t.Fatalf("τ[%d]: serial %d vs parallel %d", i, tauS[i], tauP[i])
		}
	}
	want, _ := core.BuildSerial(g, tauS)
	if err := want.Validate(g); err != nil {
		t.Fatal(err)
	}
	canon := want.Canonical(g)
	variants := append(append([]core.Variant(nil), core.ParallelVariants...), core.AblationVariants...)
	for _, v := range variants {
		got, _ := core.Build(g, tauS, v, 0)
		if err := got.Validate(g); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if got.Canonical(g) != canon {
			t.Fatalf("%s differs from serial on stress graph", v)
		}
	}
	idx, err := equitruss.BuildIndex(g, equitruss.Options{Variant: equitruss.Afforest})
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < g.NumVertices(); v += 101 {
		for _, k := range []int32{3, 4, 6} {
			a := idx.Communities(v, k)
			b := equitruss.DirectCommunities(g, tauS, v, k)
			if len(a) != len(b) {
				t.Fatalf("v=%d k=%d: indexed %d vs direct %d communities", v, k, len(a), len(b))
			}
		}
	}
}
