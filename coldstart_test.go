package equitruss_test

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"equitruss"
	"equitruss/internal/graphio"
)

// TestColdstartServeFromMmap is the cold-start drill over the real binary:
// build a v3 index file, serve it with -index -verify lazy, take a first
// answer, SIGKILL the server, restart with -verify eager over the same
// file, and differential-check both processes' serving checksums against an
// independent in-process rebuild. The mapped file is the only index state —
// a kill can never corrupt it (the mapping is read-only), so restart is
// pure re-map.
//
// Gated behind EQUITRUSS_COLDSTART=1 (run `make coldstart`); tier-1
// `go test ./...` stays fast without it, and the in-process differential
// tests cover the same load-path equivalence.
func TestColdstartServeFromMmap(t *testing.T) {
	if os.Getenv("EQUITRUSS_COLDSTART") != "1" {
		t.Skip("set EQUITRUSS_COLDSTART=1 (or run `make coldstart`) to run the mmap serving drill")
	}
	binDir := t.TempDir()
	bin := filepath.Join(binDir, "equitruss-bin")
	build := exec.Command("go", "build", "-o", bin, "./cmd/equitruss")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building server binary: %v", err)
	}

	dir := t.TempDir()
	g := equitruss.GenerateRMAT(10, 8, 7)
	graphPath := filepath.Join(dir, "base.txt")
	if err := graphio.WriteEdgeListFile(graphPath, g); err != nil {
		t.Fatal(err)
	}
	indexPath := filepath.Join(dir, "index.v3")

	out, err := exec.Command(bin, "build",
		"-graph", graphPath, "-variant", "afforest", "-format", "v3",
		"-out", indexPath).CombinedOutput()
	if err != nil {
		t.Fatalf("build command: %v\n%s", err, out)
	}
	if f, err := graphio.SniffIndexFormat(indexPath); err != nil || f != graphio.FormatV3 {
		t.Fatalf("built index sniffs as %v, %v — want v3", f, err)
	}

	// The independent truth: a full in-process pipeline over the same graph.
	ix, err := equitruss.BuildIndex(g, equitruss.Options{Variant: equitruss.Afforest})
	if err != nil {
		t.Fatal(err)
	}
	wantSums := ix.Checksums()
	want := map[string]string{
		"tau":       fmt.Sprintf("%016x", wantSums.Tau),
		"summary":   fmt.Sprintf("%016x", wantSums.Summary),
		"hierarchy": fmt.Sprintf("%016x", wantSums.Hierarchy),
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := func(verify string) *exec.Cmd {
		cmd := exec.Command(bin, "serve",
			"-graph", graphPath, "-index", indexPath, "-verify", verify,
			"-addr", addr)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting server (-verify %s): %v", verify, err)
		}
		return cmd
	}
	waitReady := func() {
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := http.Get("http://" + addr + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatal("server never became ready")
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	checkServing := func(leg string) {
		// First answer: the strongest community of vertex 0's neighborhood.
		resp, err := http.Get("http://" + addr + "/community?v=0&k=3")
		if err != nil {
			t.Fatalf("%s: query: %v", leg, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: query status %d", leg, resp.StatusCode)
		}
		resp, err = http.Get("http://" + addr + "/healthz")
		if err != nil {
			t.Fatalf("%s: healthz: %v", leg, err)
		}
		var health struct {
			MmapBytes int64             `json:"mmap_bytes"`
			LoadSec   float64           `json:"index_load_seconds"`
			Checksums map[string]string `json:"checksums"`
		}
		err = json.NewDecoder(resp.Body).Decode(&health)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: healthz decode: %v", leg, err)
		}
		if health.MmapBytes <= 0 {
			t.Fatalf("%s: mmap_bytes = %d — index was not served from a mapping", leg, health.MmapBytes)
		}
		if health.LoadSec <= 0 {
			t.Fatalf("%s: index_load_seconds = %v not reported", leg, health.LoadSec)
		}
		for layer, sum := range want {
			if health.Checksums[layer] != sum {
				t.Fatalf("%s: %s checksum %s != independent rebuild %s",
					leg, layer, health.Checksums[layer], sum)
			}
		}
	}

	// Leg 1: lazy verification, then SIGKILL with the mapping live.
	cmd := start("lazy")
	waitReady()
	checkServing("lazy")
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Leg 2: restart over the same file with eager verification — the kill
	// cannot have torn the read-only index, so this must come up clean and
	// agree byte-for-byte.
	cmd2 := start("eager")
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	waitReady()
	checkServing("eager-after-kill")
}
